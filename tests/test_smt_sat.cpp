// Unit tests for the CDCL SAT core (pure boolean, no theory).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "smt/sat.h"

namespace etsn::smt {
namespace {

Lit pos(BVar v) { return mkLit(v); }
Lit neg(BVar v) { return ~mkLit(v); }

TEST(Literal, Encoding) {
  const Lit a = mkLit(3);
  EXPECT_EQ(var(a), 3);
  EXPECT_FALSE(sign(a));
  EXPECT_TRUE(sign(~a));
  EXPECT_EQ(var(~a), 3);
  EXPECT_EQ(~~a, a);
  EXPECT_NE(a, ~a);
}

TEST(LBoolOps, XorWithSign) {
  EXPECT_EQ(LBool::True ^ false, LBool::True);
  EXPECT_EQ(LBool::True ^ true, LBool::False);
  EXPECT_EQ(LBool::Undef ^ true, LBool::Undef);
}

TEST(SatSolver, EmptyProblemIsSat) {
  SatSolver s;
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SatSolver, SingleUnit) {
  SatSolver s;
  const BVar v = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v)}));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.modelValue(v), LBool::True);
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  SatSolver s;
  const BVar v = s.newVar();
  ASSERT_TRUE(s.addClause({pos(v)}));
  EXPECT_FALSE(s.addClause({neg(v)}));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  SatSolver s;
  const BVar a = s.newVar(), b = s.newVar(), c = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a)}));
  ASSERT_TRUE(s.addClause({neg(a), pos(b)}));
  ASSERT_TRUE(s.addClause({neg(b), pos(c)}));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.modelValue(a), LBool::True);
  EXPECT_EQ(s.modelValue(b), LBool::True);
  EXPECT_EQ(s.modelValue(c), LBool::True);
}

TEST(SatSolver, TautologyIgnored) {
  SatSolver s;
  const BVar a = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SatSolver, DuplicateLiteralsDeduped) {
  SatSolver s;
  const BVar a = s.newVar(), b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(a), pos(b), pos(b)}));
  ASSERT_TRUE(s.addClause({neg(a)}));
  ASSERT_TRUE(s.addClause({neg(b), pos(a)}));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // 3 pigeons, 2 holes: x[p][h] means pigeon p in hole h.
  SatSolver s;
  BVar x[3][2];
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < 3; ++p) s.addClause({pos(x[p][0]), pos(x[p][1])});
  for (int h = 0; h < 2; ++h)
    for (int p1 = 0; p1 < 3; ++p1)
      for (int p2 = p1 + 1; p2 < 3; ++p2)
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SatSolver, PigeonHole5Into4IsUnsat) {
  SatSolver s;
  constexpr int P = 5, H = 4;
  std::vector<std::vector<BVar>> x(P, std::vector<BVar>(H));
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> cl;
    for (int h = 0; h < H; ++h) cl.push_back(pos(x[p][h]));
    s.addClause(cl);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().conflicts, 0);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  SatSolver s;
  constexpr int P = 8, H = 7;  // hard pigeonhole
  std::vector<std::vector<BVar>> x(P, std::vector<BVar>(H));
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> cl;
    for (int h = 0; h < H; ++h) cl.push_back(pos(x[p][h]));
    s.addClause(cl);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
  s.setConflictBudget(5);
  EXPECT_EQ(s.solve(), Result::Unknown);
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  SatSolver s;
  const BVar a = s.newVar(), b = s.newVar();
  ASSERT_TRUE(s.addClause({neg(a), pos(b)}));
  std::vector<Lit> assume{pos(a)};
  EXPECT_EQ(s.solve(assume), Result::Sat);
  EXPECT_EQ(s.modelValue(b), LBool::True);

  ASSERT_TRUE(s.addClause({neg(b)}));
  EXPECT_EQ(s.solve(assume), Result::Unsat);
  // Without the assumption it stays satisfiable (a = false).
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.modelValue(a), LBool::False);
}

TEST(SatSolver, ReusableAfterSolve) {
  SatSolver s;
  const BVar a = s.newVar(), b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(b)}));
  EXPECT_EQ(s.solve(), Result::Sat);
  ASSERT_TRUE(s.addClause({neg(a)}));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.modelValue(b), LBool::True);
}

// Model verification helper for randomized tests.
bool modelSatisfies(const SatSolver& s,
                    const std::vector<std::vector<Lit>>& clauses) {
  for (const auto& cl : clauses) {
    bool sat = false;
    for (Lit l : cl) sat |= (s.modelValue(l) == LBool::True);
    if (!sat) return false;
  }
  return true;
}

// Random 3-SAT at a satisfiable clause ratio: every SAT answer must verify.
TEST(SatSolverProperty, Random3SatModelsVerify) {
  std::mt19937 rng(12345);
  for (int round = 0; round < 30; ++round) {
    SatSolver s;
    const int n = 30;
    const int m = 100;  // ratio < 4.26 → usually SAT
    std::vector<BVar> vars(n);
    for (auto& v : vars) v = s.newVar();
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < m; ++i) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        const BVar v = vars[rng() % n];
        cl.push_back(mkLit(v, rng() & 1));
      }
      clauses.push_back(cl);
      s.addClause(cl);
    }
    const Result r = s.solve();
    if (r == Result::Sat) {
      EXPECT_TRUE(modelSatisfies(s, clauses)) << "round " << round;
    }
  }
}

// Cross-check against brute force on tiny instances.
TEST(SatSolverProperty, MatchesBruteForceOnTinyInstances) {
  std::mt19937 rng(777);
  for (int round = 0; round < 200; ++round) {
    const int n = 6;
    const int m = static_cast<int>(4 + rng() % 24);
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < m; ++i) {
      std::vector<Lit> cl;
      const int len = 1 + static_cast<int>(rng() % 3);
      for (int k = 0; k < len; ++k) {
        cl.push_back(mkLit(static_cast<BVar>(rng() % n), rng() & 1));
      }
      clauses.push_back(cl);
    }
    // Brute force.
    bool bruteSat = false;
    for (int mask = 0; mask < (1 << n) && !bruteSat; ++mask) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) {
          const bool val = ((mask >> var(l)) & 1) != 0;
          any |= (val != sign(l));
        }
        if (!any) {
          all = false;
          break;
        }
      }
      bruteSat = all;
    }
    // Solver.
    SatSolver s;
    for (int v = 0; v < n; ++v) s.newVar();
    for (const auto& cl : clauses) s.addClause(cl);
    const Result r = s.solve();
    EXPECT_EQ(r == Result::Sat, bruteSat) << "round " << round;
    if (r == Result::Sat) {
      EXPECT_TRUE(modelSatisfies(s, clauses));
    }
  }
}

TEST(SatSolver, StatsArePopulated) {
  SatSolver s;
  constexpr int P = 5, H = 4;
  std::vector<std::vector<BVar>> x(P, std::vector<BVar>(H));
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> cl;
    for (int h = 0; h < H; ++h) cl.push_back(pos(x[p][h]));
    s.addClause(cl);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
  ASSERT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().decisions, 0);
  EXPECT_GT(s.stats().propagations, 0);
  EXPECT_GT(s.stats().conflicts, 0);
}

}  // namespace
}  // namespace etsn::smt
