// The bench harness must reject malformed command lines loudly (a silent
// strtoull truncation once turned `--seed 10x` into seed 10) — these tests
// drive Args::tryParse, the exit-free core of Args::parse.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness.h"

namespace etsn::bench {
namespace {

/// argv builder: prepends the program name and hands mutable storage to
/// tryParse the way main() would.
bool tryParse(std::vector<std::string> tokens, Args* out, std::string* err) {
  tokens.insert(tokens.begin(), "bench");
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) argv.push_back(t.data());
  return Args::tryParse(static_cast<int>(argv.size()), argv.data(), out, err);
}

TEST(BenchHarness, DefaultsAreQuick) {
  Args a;
  std::string err;
  ASSERT_TRUE(tryParse({}, &a, &err)) << err;
  EXPECT_FALSE(a.full);
  EXPECT_FALSE(a.help);
  EXPECT_EQ(a.seed, 7u);
  EXPECT_EQ(a.duration, seconds(10));
  EXPECT_EQ(a.threads, 0);
  EXPECT_TRUE(a.jsonPath.empty());
}

TEST(BenchHarness, ParsesEveryFlag) {
  Args a;
  std::string err;
  ASSERT_TRUE(tryParse({"--full", "--seed", "42", "--duration", "3",
                        "--threads", "4", "--json", "out.json"},
                       &a, &err))
      << err;
  EXPECT_TRUE(a.full);
  EXPECT_EQ(a.seed, 42u);
  EXPECT_EQ(a.duration, seconds(3));
  EXPECT_EQ(a.threads, 4);
  EXPECT_EQ(a.jsonPath, "out.json");
}

TEST(BenchHarness, LastOfQuickFullWins) {
  Args a;
  std::string err;
  ASSERT_TRUE(tryParse({"--full", "--quick"}, &a, &err)) << err;
  EXPECT_FALSE(a.full);
}

TEST(BenchHarness, HelpFlagIsRecognised) {
  Args a;
  std::string err;
  ASSERT_TRUE(tryParse({"--help"}, &a, &err)) << err;
  EXPECT_TRUE(a.help);
  EXPECT_NE(std::string(Args::usage()).find("--full"), std::string::npos);
}

TEST(BenchHarness, UnknownFlagFails) {
  Args a;
  std::string err;
  EXPECT_FALSE(tryParse({"--sede", "42"}, &a, &err));
  EXPECT_NE(err.find("unknown flag '--sede'"), std::string::npos);
}

TEST(BenchHarness, MissingValueFails) {
  Args a;
  std::string err;
  EXPECT_FALSE(tryParse({"--seed"}, &a, &err));
  EXPECT_NE(err.find("--seed requires a value"), std::string::npos);
  EXPECT_FALSE(tryParse({"--json"}, &a, &err));
  EXPECT_NE(err.find("--json requires a value"), std::string::npos);
}

TEST(BenchHarness, MalformedNumbersFail) {
  Args a;
  std::string err;
  EXPECT_FALSE(tryParse({"--seed", "10x"}, &a, &err));
  EXPECT_NE(err.find("not a valid number: '10x'"), std::string::npos);
  EXPECT_FALSE(tryParse({"--seed", "-3"}, &a, &err));
  EXPECT_FALSE(tryParse({"--seed", ""}, &a, &err));
  EXPECT_FALSE(tryParse({"--duration", "abc"}, &a, &err));
  EXPECT_FALSE(tryParse({"--duration", "0"}, &a, &err));   // must be > 0
  EXPECT_FALSE(tryParse({"--duration", "-1"}, &a, &err));
}

TEST(BenchHarness, ThreadCountMustBePositive) {
  Args a;
  std::string err;
  // An explicit count must be >= 1; "--threads 0" used to silently mean
  // hardware concurrency, and negatives only produced the generic
  // "not a valid number" message.  Both now fail with a usage error that
  // says what to do instead.
  EXPECT_FALSE(tryParse({"--threads", "0"}, &a, &err));
  EXPECT_NE(err.find("must be >= 1"), std::string::npos) << err;
  EXPECT_NE(err.find("omit the flag"), std::string::npos) << err;
  EXPECT_FALSE(tryParse({"--threads", "-4"}, &a, &err));
  EXPECT_NE(err.find("must be >= 1"), std::string::npos) << err;
  EXPECT_FALSE(tryParse({"--threads", "2x"}, &a, &err));
  EXPECT_NE(err.find("not a valid number"), std::string::npos) << err;
  // The boundary value and the flag-absent default both still work.
  ASSERT_TRUE(tryParse({"--threads", "1"}, &a, &err)) << err;
  EXPECT_EQ(a.threads, 1);
  ASSERT_TRUE(tryParse({}, &a, &err)) << err;
  EXPECT_EQ(a.threads, 0);  // internal sentinel: use hardware concurrency
}

TEST(BenchHarness, StrictParsersRejectJunkAndOverflow) {
  std::uint64_t u = 0;
  EXPECT_TRUE(parseUint64("18446744073709551615", &u));  // UINT64_MAX
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parseUint64("18446744073709551616", &u));  // overflow
  EXPECT_FALSE(parseUint64("1 2", &u));
  EXPECT_FALSE(parseUint64(nullptr, &u));

  std::int64_t i = 0;
  EXPECT_TRUE(parseInt64("-5", &i));
  EXPECT_EQ(i, -5);
  EXPECT_FALSE(parseInt64("9223372036854775808", &i));  // overflow
  EXPECT_FALSE(parseInt64("5.0", &i));
}

}  // namespace
}  // namespace etsn::bench
