// Portfolio scheduling engines vs the exact oracle.
//
//  * Differential corpus: ~200 randomized instances small enough for the
//    SMT engine; every heuristic schedule must pass sched::validate, and
//    no heuristic may "solve" an instance SMT proves infeasible.
//  * Validator-as-oracle fuzz: seeded, *provably violating* mutations of
//    known-good schedules (negative offset, undersized slot, pre-occurrence
//    start, hop swap, guard-band intrusion, slot collision) must each be
//    rejected — the oracle itself is tested against near-miss schedules.
//  * Determinism: the portfolio result is byte-identical across thread
//    counts 1/2/8 and across repeated runs with the same seed.
//  * Substrate equivalence: greedy with a zero rip-up budget reproduces
//    the first-fit placer's slots bit-for-bit (this is what proves the
//    hyperperiod-bitmap fast path against the pairwise reference).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/expand.h"
#include "sched/heuristic.h"
#include "sched/portfolio.h"
#include "sched/scheduler.h"
#include "sched/validate.h"
#include "workload/iec60802.h"

namespace etsn::sched {
namespace {

struct Instance {
  net::Topology topo;
  std::vector<net::StreamSpec> specs;
};

Instance makeInstance(std::uint64_t seed) {
  Rng rng(seed);
  const auto kind = static_cast<workload::TopologyKind>(
      rng.uniformInt(0, 3));
  const int switches = static_cast<int>(rng.uniformInt(2, 4));
  Instance inst;
  inst.topo = workload::makeScaledTopology(kind, switches, 2);
  workload::TctWorkload w;
  w.numStreams = static_cast<int>(rng.uniformInt(3, 8));
  w.periods = {milliseconds(4), milliseconds(8)};
  w.networkLoad = 0.3 + 0.2 * static_cast<double>(rng.uniformInt(0, 2));
  w.seed = seed;
  inst.specs = workload::generateTct(inst.topo, w);
  // A slice of the corpus gets latency bounds squeezed to exactly one
  // last-hop frame transmission + propagation: structurally valid (the
  // e2e budget is 0, not negative) yet provably UNSAT for the >= 2-hop
  // device-to-device paths here, where the first hop's wire time plus the
  // switch processing delay alone already overdraw the budget.  The
  // differential contract needs both sides of the oracle's verdict.
  if (seed % 3 == 0) {
    SchedulerConfig cfg;
    cfg.numProbabilistic = 3;
    const Expansion exp = expandStreams(inst.topo, inst.specs, cfg);
    for (std::size_t i = 0; i < inst.specs.size(); ++i) {
      TimeNs squeezed = 0;
      for (const StreamId id : exp.specToStreams[i]) {
        const ExpandedStream& s = exp.streams[static_cast<std::size_t>(id)];
        const std::size_t lastHop = static_cast<std::size_t>(s.hops() - 1);
        const net::Link& link = inst.topo.link(s.path[lastHop]);
        const TimeNs tu = link.timeUnit;
        const TimeNs tx =
            frameTxTimeOf(s, s.framesOnLink[lastHop] - 1, link);
        const TimeNs budget =
            ((tx + tu - 1) / tu + (link.propagationDelay + tu - 1) / tu) *
            tu;
        squeezed = std::max(squeezed, budget);
      }
      inst.specs[i].maxLatency = squeezed;
    }
  }
  if (seed % 2 == 0) {
    workload::EctWorkload e;
    e.numStreams = 1;
    e.seed = seed + 1;
    for (auto& s : workload::generateEct(inst.topo, e)) {
      inst.specs.push_back(std::move(s));
    }
  }
  return inst;
}

ScheduleOptions optionsFor(const std::string& engine) {
  ScheduleOptions opt;
  opt.engine = engineFromString(engine);
  opt.config.numProbabilistic = 3;
  return opt;
}

/// Canonical byte-level serialization of the deterministic result surface
/// (timing metadata deliberately excluded).
std::string fingerprint(const MethodSchedule& ms) {
  std::ostringstream os;
  os << ms.schedule.info.feasible << '|' << ms.schedule.info.engine << '|'
     << ms.schedule.info.portfolioWinner << '|';
  for (const Slot& s : ms.schedule.slots) {
    os << s.stream << ',' << s.hop << ',' << s.frameIndex << ',' << s.start
       << ',' << s.duration << ';';
  }
  return os.str();
}

TEST(SchedPortfolioDifferential, HeuristicsAgreeWithSmtOracle) {
  const std::vector<std::string> heuristics = {"greedy", "tabu", "dnc",
                                               "portfolio"};
  int smtFeasible = 0;
  int smtInfeasible = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Instance inst = makeInstance(seed);
    const auto smt = buildSchedule(inst.topo, inst.specs, optionsFor("smt"));
    ASSERT_FALSE(smt.schedule.info.degraded)
        << "corpus instance " << seed << " exceeded the SMT budget";
    (smt.schedule.info.feasible ? smtFeasible : smtInfeasible)++;
    if (smt.schedule.info.feasible) {
      EXPECT_TRUE(validate(inst.topo, smt.schedule).empty())
          << "SMT schedule invalid on instance " << seed;
    }
    for (const std::string& engine : heuristics) {
      auto opt = optionsFor(engine);
      opt.portfolio.seed = seed;
      const auto h = buildSchedule(inst.topo, inst.specs, opt);
      if (h.schedule.info.feasible) {
        EXPECT_TRUE(smt.schedule.info.feasible)
            << engine << " 'solved' SMT-infeasible instance " << seed;
        const auto violations = validate(inst.topo, h.schedule);
        EXPECT_TRUE(violations.empty())
            << engine << " schedule rejected by the validator on instance "
            << seed << ": " << violations.front().constraint << " "
            << violations.front().detail;
      }
      // The converse (SMT feasible, heuristic gave up) is allowed:
      // the heuristics are incomplete by contract.
    }
  }
  // The corpus must exercise both verdicts or the differential is vacuous.
  EXPECT_GT(smtFeasible, 20);
  EXPECT_GT(smtInfeasible, 20);
}

// ---------------------------------------------------------------------------
// Validator-as-oracle fuzz: each mutation helper finds a site where the
// mutation provably violates a constraint family, applies it, and returns
// true; schedules lacking such a site are skipped for that mutation.

using Mutator = bool (*)(const net::Topology&, Schedule*, Rng*);

bool mutateNegativeStart(const net::Topology&, Schedule* s, Rng* rng) {
  if (s->slots.empty()) return false;
  auto& slot = s->slots[static_cast<std::size_t>(rng->uniformInt(
      0, static_cast<std::int64_t>(s->slots.size()) - 1))];
  slot.start = -microseconds(1);  // (1): negative offset
  return true;
}

bool mutateUndersizedSlot(const net::Topology& topo, Schedule* s, Rng* rng) {
  if (s->slots.empty()) return false;
  auto& slot = s->slots[static_cast<std::size_t>(rng->uniformInt(
      0, static_cast<std::int64_t>(s->slots.size()) - 1))];
  const ExpandedStream& es =
      s->streams[static_cast<std::size_t>(slot.stream)];
  const net::Link& link =
      topo.link(es.path[static_cast<std::size_t>(slot.hop)]);
  // (1): one nanosecond below the frame's wire time.
  slot.duration = frameTxTimeOf(es, slot.frameIndex, link) - 1;
  return true;
}

bool mutatePreOccurrence(const net::Topology&, Schedule* s, Rng* rng) {
  std::vector<StreamId> probs;
  for (const ExpandedStream& es : s->streams) {
    if (es.kind == StreamKind::Prob && es.occurrence > 0) probs.push_back(es.id);
  }
  if (probs.empty()) return false;
  const StreamId id = probs[static_cast<std::size_t>(rng->uniformInt(
      0, static_cast<std::int64_t>(probs.size()) - 1))];
  for (Slot& slot : s->slots) {
    if (slot.stream == id && slot.hop == 0 && slot.frameIndex == 0) {
      // (2): first slot opens before the possibility's occurrence time.
      slot.start =
          s->streams[static_cast<std::size_t>(id)].occurrence -
          microseconds(1);
      return true;
    }
  }
  return false;
}

bool mutateHopSwap(const net::Topology&, Schedule* s, Rng* rng) {
  std::vector<StreamId> multi;
  for (const ExpandedStream& es : s->streams) {
    if (es.hops() >= 2) multi.push_back(es.id);
  }
  if (multi.empty()) return false;
  const StreamId id = multi[static_cast<std::size_t>(rng->uniformInt(
      0, static_cast<std::int64_t>(multi.size()) - 1))];
  const ExpandedStream& es = s->streams[static_cast<std::size_t>(id)];
  // Swap hop-1 frame 0 with its (7)-checked upstream partner (the prudent
  // index offset decides which hop-0 frame that is).
  const int nUp = es.framesOnLink[0];
  const int nDown = es.framesOnLink[1];
  const int upIdx = std::min(std::max(nUp - nDown, 0), nUp - 1);
  Slot* h0 = nullptr;
  Slot* h1 = nullptr;
  for (Slot& slot : s->slots) {
    if (slot.stream != id) continue;
    if (slot.hop == 0 && slot.frameIndex == upIdx) h0 = &slot;
    if (slot.hop == 1 && slot.frameIndex == 0) h1 = &slot;
  }
  if (h0 == nullptr || h1 == nullptr) return false;
  // (7): the downstream slot now precedes its upstream transmission
  // (hop-1 starts strictly after hop-0 ends in any valid schedule).
  std::swap(h0->start, h1->start);
  return true;
}

bool mutateGuardBand(const net::Topology& topo, Schedule* s, Rng* rng) {
  std::vector<StreamId> multi;
  for (const ExpandedStream& es : s->streams) {
    if (es.hops() >= 2) multi.push_back(es.id);
  }
  if (multi.empty()) return false;
  const StreamId id = multi[static_cast<std::size_t>(rng->uniformInt(
      0, static_cast<std::int64_t>(multi.size()) - 1))];
  const ExpandedStream& es = s->streams[static_cast<std::size_t>(id)];
  const Slot* up = nullptr;
  Slot* down = nullptr;
  const int nUp = es.framesOnLink[0];
  const int nDown = es.framesOnLink[1];
  const int upIdx = std::min(std::max(nUp - nDown, 0), nUp - 1);
  for (Slot& slot : s->slots) {
    if (slot.stream != id) continue;
    if (slot.hop == 0 && slot.frameIndex == upIdx) up = &slot;
    if (slot.hop == 1 && slot.frameIndex == 0) down = &slot;
  }
  if (up == nullptr || down == nullptr) return false;
  // (7): land the downstream slot one microsecond inside the propagation +
  // processing guard band following the upstream transmission.
  down->start = up->start + up->duration + topo.link(es.path[0]).propagationDelay +
                s->config.switchProcessingDelay - microseconds(1);
  return true;
}

bool mutateSlotCollision(const net::Topology&, Schedule* s, Rng* rng) {
  // Shift a Det slot exactly onto another Det stream's slot on the same
  // link: Det/Det pairs may never overlap, so (5) must fire.
  std::vector<std::pair<Slot*, Slot*>> candidates;
  for (Slot& a : s->slots) {
    const ExpandedStream& sa = s->streams[static_cast<std::size_t>(a.stream)];
    if (sa.kind != StreamKind::Det) continue;
    for (Slot& b : s->slots) {
      if (a.stream == b.stream) continue;
      const ExpandedStream& sb =
          s->streams[static_cast<std::size_t>(b.stream)];
      if (sb.kind != StreamKind::Det) continue;
      if (sa.path[static_cast<std::size_t>(a.hop)] !=
          sb.path[static_cast<std::size_t>(b.hop)])
        continue;
      candidates.emplace_back(&a, &b);
    }
  }
  if (candidates.empty()) return false;
  const auto& [a, b] = candidates[static_cast<std::size_t>(rng->uniformInt(
      0, static_cast<std::int64_t>(candidates.size()) - 1))];
  a->start = b->start;  // identical starts always intersect
  return true;
}

TEST(SchedPortfolioFuzz, ValidatorRejectsEveryMutation) {
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"negative-start", mutateNegativeStart},
      {"undersized-slot", mutateUndersizedSlot},
      {"pre-occurrence", mutatePreOccurrence},
      {"hop-swap", mutateHopSwap},
      {"guard-band", mutateGuardBand},
      {"slot-collision", mutateSlotCollision},
  };
  int applied = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance inst = makeInstance(seed * 2);  // even: feasible-leaning
    auto opt = optionsFor("portfolio");
    opt.portfolio.seed = seed;
    const auto base = buildSchedule(inst.topo, inst.specs, opt);
    if (!base.schedule.info.feasible) continue;
    ASSERT_TRUE(validate(inst.topo, base.schedule).empty());
    for (const auto& [name, mutate] : mutators) {
      Schedule mutated = base.schedule;
      Rng rng(seed * 1000 + static_cast<std::uint64_t>(applied));
      if (!mutate(inst.topo, &mutated, &rng)) continue;
      const auto violations = validate(inst.topo, mutated);
      EXPECT_FALSE(violations.empty())
          << "validator accepted a '" << name
          << "' mutation on corpus seed " << seed * 2;
      ++applied;
    }
  }
  // Every mutation family must have actually run, several times over.
  EXPECT_GE(applied, 30);
}

// ---------------------------------------------------------------------------

TEST(SchedPortfolioDeterminism, ByteIdenticalAcrossThreadCounts) {
  // Seed 41 is outside the squeezed (UNSAT) corpus slice, so the instance
  // is feasible and the fingerprint covers actual slots.
  const Instance inst = makeInstance(41);
  std::string reference;
  for (const int threads : {1, 2, 8}) {
    auto opt = optionsFor("portfolio");
    opt.portfolio.seed = 7;
    opt.portfolio.threads = threads;
    const auto ms = buildSchedule(inst.topo, inst.specs, opt);
    ASSERT_TRUE(ms.schedule.info.feasible);
    const std::string fp = fingerprint(ms);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(reference, fp)
          << "portfolio result differs at --threads " << threads;
    }
  }
}

TEST(SchedPortfolioDeterminism, ByteIdenticalAcrossRepeatedRuns) {
  const Instance inst = makeInstance(43);
  std::string reference;
  for (int run = 0; run < 3; ++run) {
    auto opt = optionsFor("portfolio");
    opt.portfolio.seed = 11;
    const auto ms = buildSchedule(inst.topo, inst.specs, opt);
    const std::string fp = fingerprint(ms);
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(reference, fp) << "portfolio result differs on run " << run;
    }
  }
}

// Greedy with no rip-up budget is definitionally the first-fit placer on
// the Placement substrate; slot-set equality with HeuristicPlacer proves
// the substrate (including its bitmap fast path) against the pairwise
// reference implementation.
TEST(SchedPortfolioSubstrate, GreedyWithoutBacktrackingMatchesFirstFit) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const Instance inst = makeInstance(seed);
    SchedulerConfig config;
    config.numProbabilistic = 3;
    const Expansion exp = expandStreams(inst.topo, inst.specs, config);

    HeuristicPlacer placer(inst.topo, exp.streams, config);
    const bool firstFitOk = placer.place();

    PortfolioOptions opts;
    opts.greedyBacktrack = 0;
    const EngineResult greedy =
        runGreedy(inst.topo, exp.streams, config, opts);

    ASSERT_EQ(firstFitOk, greedy.feasible) << "instance " << seed;
    if (!firstFitOk) continue;
    auto sortSlots = [](std::vector<Slot> v) {
      std::sort(v.begin(), v.end(), [](const Slot& a, const Slot& b) {
        return std::tie(a.stream, a.hop, a.frameIndex) <
               std::tie(b.stream, b.hop, b.frameIndex);
      });
      return v;
    };
    const auto a = sortSlots(placer.slots());
    const auto b = sortSlots(greedy.slots);
    ASSERT_EQ(a.size(), b.size()) << "instance " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].start, b[i].start) << "instance " << seed;
      EXPECT_EQ(a[i].duration, b[i].duration) << "instance " << seed;
    }
  }
}

// Link-disjoint components place identically whether or not the other
// component is present: the divide step genuinely decomposes the problem.
TEST(SchedPortfolioSubstrate, DncComponentsAreIndependent) {
  // Two switch islands of one line topology; streams never cross the
  // middle, so the stream sets of sw0 and sw3 are link-disjoint.
  const net::Topology topo =
      workload::makeScaledTopology(workload::TopologyKind::Line, 4, 3);
  const auto devs = topo.devices();  // grouped by switch, 3 per switch
  auto tct = [&](const std::string& name, net::NodeId src, net::NodeId dst) {
    net::StreamSpec s;
    s.name = name;
    s.src = src;
    s.dst = dst;
    s.period = milliseconds(4);
    s.maxLatency = milliseconds(4);
    s.payloadBytes = 400;
    s.type = net::TrafficClass::TimeTriggered;
    return s;
  };
  std::vector<net::StreamSpec> islandA = {tct("a1", devs[0], devs[1]),
                                          tct("a2", devs[1], devs[2]),
                                          tct("a3", devs[2], devs[0])};
  std::vector<net::StreamSpec> islandB = {tct("b1", devs[9], devs[10]),
                                          tct("b2", devs[10], devs[11])};

  SchedulerConfig config;
  const Expansion expA = expandStreams(topo, islandA, config);
  std::vector<net::StreamSpec> both = islandA;
  both.insert(both.end(), islandB.begin(), islandB.end());
  const Expansion expBoth = expandStreams(topo, both, config);

  PortfolioOptions opts;
  const EngineResult a = runDnc(topo, expA.streams, config, opts);
  const EngineResult combined = runDnc(topo, expBoth.streams, config, opts);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(combined.feasible);

  // Island A's expanded ids are identical in both runs (specs come first),
  // so its slots must be bit-identical.
  auto slotsOf = [&](const std::vector<Slot>& slots, StreamId maxId) {
    std::vector<Slot> out;
    for (const Slot& s : slots) {
      if (s.stream <= maxId) out.push_back(s);
    }
    std::sort(out.begin(), out.end(), [](const Slot& x, const Slot& y) {
      return std::tie(x.stream, x.hop, x.frameIndex) <
             std::tie(y.stream, y.hop, y.frameIndex);
    });
    return out;
  };
  const StreamId maxA =
      static_cast<StreamId>(expA.streams.size()) - 1;
  const auto sa = slotsOf(a.slots, maxA);
  const auto sb = slotsOf(combined.slots, maxA);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].start, sb[i].start);
    EXPECT_EQ(sa[i].duration, sb[i].duration);
  }
}

// The gap probe certifies heuristic results against the exact engine and
// reports a sane optimality gap.
TEST(SchedPortfolioCertification, GapProbeCertifiesFeasibleInstances) {
  const Instance inst = makeInstance(44);
  auto opt = optionsFor("portfolio");
  opt.portfolio.seed = 3;
  opt.certify = true;
  const auto ms = buildSchedule(inst.topo, inst.specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_TRUE(ms.schedule.info.certified);
  EXPECT_GT(ms.schedule.info.flowspanTu, 0);
  EXPECT_GT(ms.schedule.info.flowspanLowerBoundTu, 0);
  EXPECT_LE(ms.schedule.info.flowspanLowerBoundTu,
            ms.schedule.info.flowspanTu);
  EXPECT_GE(ms.schedule.info.gapPercent, 0.0);
}

}  // namespace
}  // namespace etsn::sched
