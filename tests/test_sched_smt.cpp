// Integration tests for the SMT scheduling pipeline: E-TSN, PERIOD, AVB.
// Every produced schedule must pass the independent validator.
#include <gtest/gtest.h>

#include "net/ethernet.h"
#include "sched/program.h"
#include "sched/scheduler.h"
#include "sched/validate.h"

namespace etsn::sched {
namespace {

net::StreamSpec tct(const std::string& name, net::NodeId src, net::NodeId dst,
                    TimeNs period, int payload, bool share) {
  net::StreamSpec s;
  s.name = name;
  s.src = src;
  s.dst = dst;
  s.period = period;
  s.maxLatency = period;
  s.payloadBytes = payload;
  s.share = share;
  return s;
}

net::StreamSpec ect(const std::string& name, net::NodeId src, net::NodeId dst,
                    TimeNs minInterevent, int payload) {
  net::StreamSpec s;
  s.name = name;
  s.src = src;
  s.dst = dst;
  s.period = minInterevent;
  s.maxLatency = minInterevent;
  s.payloadBytes = payload;
  s.type = net::TrafficClass::EventTriggered;
  return s;
}

TEST(SmtSchedule, PaperFig4TwoTctStreams) {
  // The §II example: s1 D1->D3 (3 frames), s2 D2->D3 (1 frame), both with
  // cycle 5T and deadline 5T, contending on SW1-D3.
  net::Topology t;
  const auto d1 = t.addDevice("D1");
  const auto d2 = t.addDevice("D2");
  const auto d3 = t.addDevice("D3");
  const auto sw = t.addSwitch("SW1");
  t.connect(d1, sw);
  t.connect(d2, sw);
  t.connect(sw, d3);
  // T (one MTU at 100 Mbps) ≈ 123 us; use period 5T ≈ 640 us.
  const TimeNs period = microseconds(640);
  auto s1 = tct("s1", d1, d3, period, 3 * 1500, false);
  auto s2 = tct("s2", d2, d3, period, 1500, false);
  ScheduleOptions opt;
  const auto ms = buildSchedule(t, {s1, s2}, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_TRUE(validate(t, ms.schedule).empty());
  // Four frames share SW1-D3 within the 640us cycle.
  const auto onLink = ms.schedule.slotsOnLink(t.linkBetween(sw, d3), t);
  EXPECT_EQ(onLink.size(), 4u);
}

TEST(SmtSchedule, InfeasibleWhenLinkOverloaded) {
  net::Topology t = net::makeTestbedTopology();
  // Two 3-frame streams with period barely above 3 frames of wire time
  // must collide on the shared SW1-SW2 link: 6 frames don't fit.
  const TimeNs period = microseconds(400);  // 3 * 123us ≈ 369us each
  auto s1 = tct("s1", 0, 2, period, 3 * 1500, false);
  auto s2 = tct("s2", 1, 3, period, 3 * 1500, false);
  ScheduleOptions opt;
  const auto ms = buildSchedule(t, {s1, s2}, opt);
  EXPECT_FALSE(ms.schedule.info.feasible);
}

TEST(SmtSchedule, EtsnTestbedWithEct) {
  // Miniature of the §VI-B testbed setup: TCT streams plus one shared ECT.
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(4), 1000, true),
      tct("t2", 1, 3, milliseconds(8), 2000, true),
      tct("t3", 3, 0, milliseconds(8), 500, false),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  opt.config.numProbabilistic = 8;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  const auto violations = validate(t, ms.schedule);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.constraint << ": " << v.detail;
  }
  // 3 Det + 8 Prob streams expanded.
  EXPECT_EQ(ms.schedule.streams.size(), 11u);
  EXPECT_EQ(ms.schedule.specToStreams[3].size(), 8u);
  EXPECT_EQ(ms.schedule.hyperperiod, milliseconds(16));
}

TEST(SmtSchedule, EtsnEctWindowsCoverThePeriod) {
  // The union of probabilistic first-link slots must leave no gap larger
  // than T/N plus the per-possibility deadline headroom; a coarse check:
  // the N slots must have distinct, increasing occurrence coverage.
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(4), 1000, true),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  opt.config.numProbabilistic = 8;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  ASSERT_TRUE(validate(t, ms.schedule).empty());
  // Each probabilistic stream's first-link slot is at or after its ot and
  // within its tightened deadline.
  for (const StreamId sid : ms.schedule.specToStreams[1]) {
    const ExpandedStream& ps =
        ms.schedule.streams[static_cast<std::size_t>(sid)];
    const auto slots = ms.schedule.slotsOf(sid, 0);
    ASSERT_EQ(slots.size(), 1u);
    EXPECT_GE(slots[0].start, ps.occurrence);
    const auto lastHopSlots = ms.schedule.slotsOf(sid, ps.hops() - 1);
    EXPECT_LE(lastHopSlots.back().start - ps.occurrence, ps.maxLatency);
  }
}

TEST(SmtSchedule, PeriodBaselineConvertsEct) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(8), 1000, true),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  opt.method = Method::PERIOD;
  opt.periodSlotFactor = 4;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_TRUE(validate(t, ms.schedule).empty());
  // ECT became one Det stream with period T/4 = 4ms.
  ASSERT_EQ(ms.schedule.specToStreams[1].size(), 1u);
  const ExpandedStream& e = ms.schedule.streams[static_cast<std::size_t>(
      ms.schedule.specToStreams[1][0])];
  EXPECT_EQ(e.kind, StreamKind::Det);
  EXPECT_EQ(e.period, milliseconds(4));
  // No prudent extras under PERIOD (no sharing).
  for (const ExpandedStream& s : ms.schedule.streams) {
    for (std::size_t h = 0; h < s.path.size(); ++h) {
      EXPECT_EQ(s.framesOnLink[h], s.baseFrames());
    }
  }
}

TEST(SmtSchedule, AvbBaselineSchedulesOnlyTct) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(8), 1000, true),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  opt.method = Method::AVB;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_TRUE(validate(t, ms.schedule).empty());
  EXPECT_TRUE(ms.schedule.specToStreams[1].empty());
  EXPECT_EQ(ms.schedule.streams.size(), 1u);
}

TEST(SmtSchedule, HeuristicMatchesSmtOnFeasibility) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(4), 1000, true),
      tct("t2", 1, 3, milliseconds(8), 2000, true),
      tct("t3", 3, 0, milliseconds(8), 500, false),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  opt.useHeuristic = true;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_EQ(ms.schedule.info.engine, "heuristic");
  const auto violations = validate(t, ms.schedule);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.constraint << ": " << v.detail;
  }
}

TEST(SmtSchedule, ProgramCompilation) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(4), 1000, true),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  const NetworkProgram prog = compileProgram(t, ms);
  EXPECT_EQ(prog.gclCycle, milliseconds(16));
  ASSERT_EQ(prog.talkers.size(), 1u);
  EXPECT_EQ(prog.talkers[0].period, milliseconds(4));
  ASSERT_EQ(prog.ectSources.size(), 1u);
  EXPECT_EQ(prog.ectSources[0].priority, opt.config.ectPriority);
  EXPECT_TRUE(prog.cbs.empty());

  // The talker's first-link GCL must open its queue at its offset.
  const TalkerConfig& talker = prog.talkers[0];
  const net::Gcl& gcl =
      prog.linkGcl[static_cast<std::size_t>(talker.route[0])];
  ASSERT_TRUE(gcl.installed());
  EXPECT_TRUE(gcl.gateOpen(talker.priority, talker.offset));
  // Every probabilistic slot opens the EP gate on its link.
  for (const Slot& slot : ms.schedule.slots) {
    const ExpandedStream& s =
        ms.schedule.streams[static_cast<std::size_t>(slot.stream)];
    if (s.kind != StreamKind::Prob) continue;
    const net::Gcl& g = prog.linkGcl[static_cast<std::size_t>(
        s.path[static_cast<std::size_t>(slot.hop)])];
    EXPECT_TRUE(g.gateOpen(s.priority, slot.start % prog.gclCycle));
  }
}

TEST(SmtSchedule, AvbProgramHasCbsAndUnallocatedGates) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(4), 1000, false),
      ect("e1", 1, 3, milliseconds(16), 1500),
  };
  ScheduleOptions opt;
  opt.method = Method::AVB;
  opt.avbIdleSlopeFraction = 0.5;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  const NetworkProgram prog = compileProgram(t, ms);
  ASSERT_EQ(prog.cbs.size(), 1u);
  EXPECT_EQ(prog.cbs[0].queue, opt.config.ectPriority);
  EXPECT_DOUBLE_EQ(prog.cbs[0].idleSlopeFraction, 0.5);
  // On a scheduled link, the AVB queue must be closed during a TCT slot
  // and open outside it.
  const auto& talker = prog.talkers[0];
  const net::Gcl& g = prog.linkGcl[static_cast<std::size_t>(talker.route[0])];
  ASSERT_TRUE(g.installed());
  EXPECT_FALSE(g.gateOpen(prog.cbs[0].queue, talker.offset));
  EXPECT_TRUE(g.gateOpen(talker.priority, talker.offset));
}

TEST(SmtSchedule, SolveInfoPopulated) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      tct("t1", 0, 2, milliseconds(4), 1000, false),
      tct("t2", 1, 3, milliseconds(8), 1000, false),
  };
  ScheduleOptions opt;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_EQ(ms.schedule.info.engine, "smt");
  EXPECT_GT(ms.schedule.info.smtAtoms, 0);
  EXPECT_GT(ms.schedule.info.smtClauses, 0);
  EXPECT_GE(ms.schedule.info.solveSeconds, 0.0);
}

}  // namespace
}  // namespace etsn::sched

namespace etsn::sched {
namespace {

net::StreamSpec mkTct(const std::string& name, net::NodeId src,
                      net::NodeId dst, TimeNs period, int payload,
                      bool share) {
  net::StreamSpec s;
  s.name = name;
  s.src = src;
  s.dst = dst;
  s.period = period;
  s.maxLatency = period;
  s.payloadBytes = payload;
  s.share = share;
  return s;
}

TEST(IsolationModes, AllModesProduceValidSchedules) {
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      mkTct("a", 0, 2, milliseconds(4), 2000, true),
      mkTct("b", 0, 2, milliseconds(4), 1000, true),
      mkTct("c", 1, 3, milliseconds(8), 3000, false),
  };
  net::StreamSpec e;
  e.name = "e";
  e.src = 1;
  e.dst = 3;
  e.period = milliseconds(16);
  e.maxLatency = milliseconds(16);
  e.payloadBytes = 1500;
  e.type = net::TrafficClass::EventTriggered;
  specs.push_back(e);

  for (const auto mode :
       {SchedulerConfig::Isolation::None, SchedulerConfig::Isolation::FifoOrder,
        SchedulerConfig::Isolation::Presence,
        SchedulerConfig::Isolation::Flow}) {
    ScheduleOptions opt;
    opt.config.isolation = mode;
    opt.config.numProbabilistic = 4;
    const auto ms = buildSchedule(t, specs, opt);
    ASSERT_TRUE(ms.schedule.info.feasible)
        << "mode " << static_cast<int>(mode);
    const auto violations = validate(t, ms.schedule);
    for (const auto& v : violations) {
      ADD_FAILURE() << static_cast<int>(mode) << " " << v.constraint << ": "
                    << v.detail;
    }
  }
}

TEST(IsolationModes, FlowSeparatesWholeBursts) {
  // Two same-queue 2-frame streams from the same device: under Flow their
  // first-link bursts must not interleave.
  net::Topology t = net::makeTestbedTopology();
  std::vector<net::StreamSpec> specs{
      mkTct("a", 0, 2, milliseconds(4), 3000, false),
      mkTct("b", 0, 2, milliseconds(4), 3000, false),
  };
  specs[0].priority = 1;
  specs[1].priority = 1;  // force the same queue
  ScheduleOptions opt;
  opt.config.isolation = SchedulerConfig::Isolation::Flow;
  const auto ms = buildSchedule(t, specs, opt);
  ASSERT_TRUE(ms.schedule.info.feasible);
  EXPECT_TRUE(validate(t, ms.schedule).empty());
  const auto sa = ms.schedule.slotsOf(0, 0);
  const auto sb = ms.schedule.slotsOf(1, 0);
  ASSERT_EQ(sa.size(), 2u);
  ASSERT_EQ(sb.size(), 2u);
  const bool aFirst = sa.back().start + sa.back().duration <= sb.front().start;
  const bool bFirst = sb.back().start + sb.back().duration <= sa.front().start;
  EXPECT_TRUE(aFirst || bFirst) << "bursts interleave under Flow isolation";
}

}  // namespace
}  // namespace etsn::sched
