#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/time.h"

namespace etsn {
namespace {

TEST(Time, UnitConstructors) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(nanoseconds(42), 42);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(toUs(microseconds(423)), 423.0);
  EXPECT_DOUBLE_EQ(toMs(milliseconds(16)), 16.0);
}

TEST(Time, CeilDiv) {
  EXPECT_EQ(ceilDiv(0, 4), 0);
  EXPECT_EQ(ceilDiv(1, 4), 1);
  EXPECT_EQ(ceilDiv(4, 4), 1);
  EXPECT_EQ(ceilDiv(5, 4), 2);
}

TEST(Time, Format) {
  EXPECT_EQ(formatTime(nanoseconds(5)), "5ns");
  EXPECT_EQ(formatTime(microseconds(423)), "423.000us");
  EXPECT_EQ(formatTime(milliseconds(16)), "16.000ms");
  EXPECT_EQ(formatTime(-microseconds(2)), "-2.000us");
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(ETSN_CHECK(1 == 2), InvariantError);
  EXPECT_NO_THROW(ETSN_CHECK(1 == 1));
  EXPECT_THROW(ETSN_CHECK_MSG(false, "ctx " << 42), InvariantError);
}

TEST(Math, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcmAll({4, 8, 16}), 16);
  EXPECT_EQ(lcmAll({5, 10, 20}), 20);
  EXPECT_EQ(lcmAll({3, 5, 7}), 105);
}

TEST(Math, Gcd) {
  EXPECT_EQ(gcdAll({4, 8, 16}), 4);
  EXPECT_EQ(gcdAll({1000, 1500}), 500);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(1);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= (v == 0);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, PickCoversAll) {
  Rng r(2);
  const std::vector<int> xs{10, 20, 30};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 300; ++i) {
    const int v = r.pick(xs);
    counts[static_cast<std::size_t>(v / 10 - 1)]++;
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Rng, ForkIndependent) {
  Rng a(3);
  Rng child = a.fork();
  // The child continues deterministically regardless of the parent.
  Rng a2(3);
  Rng child2 = a2.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.uniformInt(0, 1 << 30), child2.uniformInt(0, 1 << 30));
  }
}

TEST(Rng, ForkDoesNotDisturbParent) {
  // splitmix64 derivation: splitting children off must leave the parent's
  // own stream untouched (campaign tasks rely on this).
  Rng plain(11);
  std::vector<std::int64_t> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(plain.uniformInt(0, 1 << 30));

  Rng forked(11);
  forked.fork();
  forked.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(forked.uniformInt(0, 1 << 30), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, SuccessiveForksAreDistinctStreams) {
  Rng parent(3);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += c1.uniformInt(0, 1 << 30) == c2.uniformInt(0, 1 << 30) ? 1 : 0;
  }
  EXPECT_LT(equal, 4);  // unrelated streams collide only by chance
}

// Stream-independence smoke test: child output should look unrelated to
// the parent's — compare bit agreement against the 50% expected for
// independent uniform draws.
TEST(Rng, ForkStreamIndependenceSmoke) {
  Rng parent(1234);
  Rng child = parent.fork();
  int agreeing = 0;
  constexpr int kDraws = 256;
  for (int i = 0; i < kDraws; ++i) {
    const auto p = static_cast<std::uint64_t>(parent.uniformInt(0, (1 << 30)));
    const auto c = static_cast<std::uint64_t>(child.uniformInt(0, (1 << 30)));
    for (int bit = 0; bit < 30; ++bit) {
      agreeing += ((p >> bit) & 1) == ((c >> bit) & 1) ? 1 : 0;
    }
  }
  const double frac = static_cast<double>(agreeing) / (kDraws * 30);
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(Rng, DeriveSeedDecorrelatesAdjacentIndices) {
  // Task seeds for adjacent indices (and adjacent roots) must differ and
  // not collide across a realistic grid.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t root : {1ull, 2ull, 7ull}) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      seeds.push_back(Rng::deriveSeed(root, i));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace etsn
