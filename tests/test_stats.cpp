// Unit tests for the latency statistics module.
#include <gtest/gtest.h>

#include "common/check.h"
#include "stats/latency.h"

namespace etsn::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.meanNs, 0);
  EXPECT_EQ(s.minNs, 0);
  EXPECT_EQ(s.maxNs, 0);
}

TEST(Summary, SingleSample) {
  const Summary s = summarize({microseconds(423)});
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.meanNs, 423000.0);
  EXPECT_EQ(s.minNs, microseconds(423));
  EXPECT_EQ(s.maxNs, microseconds(423));
  EXPECT_DOUBLE_EQ(s.stddevNs, 0.0);
}

TEST(Summary, KnownDistribution) {
  const Summary s = summarize({1000, 2000, 3000, 4000, 5000});
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.meanNs, 3000.0);
  EXPECT_EQ(s.minNs, 1000);
  EXPECT_EQ(s.maxNs, 5000);
  // Population stddev of {1..5}k = sqrt(2)k.
  EXPECT_NEAR(s.stddevNs, 1414.2, 0.1);
  EXPECT_DOUBLE_EQ(s.meanUs(), 3.0);
  EXPECT_DOUBLE_EQ(s.maxUs(), 5.0);
}

TEST(Summary, UnorderedInput) {
  const Summary s = summarize({5000, 1000, 3000});
  EXPECT_EQ(s.minNs, 1000);
  EXPECT_EQ(s.maxNs, 5000);
}

TEST(Percentile, Endpoints) {
  std::vector<TimeNs> v{10, 20, 30, 40};
  EXPECT_EQ(percentile(v, 0), 10);
  EXPECT_EQ(percentile(v, 100), 40);
}

TEST(Percentile, Interpolates) {
  std::vector<TimeNs> v{0, 100};
  EXPECT_EQ(percentile(v, 50), 50);
  EXPECT_EQ(percentile(v, 25), 25);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile(std::vector<TimeNs>{}, 50), InvariantError);
}

TEST(Cdf, MonotoneAndComplete) {
  std::vector<TimeNs> v;
  for (int i = 100; i >= 1; --i) v.push_back(i * 10);
  const auto points = cdf(v, 20);
  ASSERT_EQ(points.size(), 20u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].value, points[i - 1].value);
    EXPECT_GT(points[i].fraction, points[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
  EXPECT_EQ(points.back().value, 1000);
}

TEST(Cdf, EmptyInput) { EXPECT_TRUE(cdf({}, 10).empty()); }

TEST(Cdf, FormatsRows) {
  const auto points = cdf({1000, 2000}, 2);
  const std::string out = formatCdf(points);
  EXPECT_NE(out.find("0.500"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace etsn::stats
