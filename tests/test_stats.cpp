// Unit tests for the latency statistics module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "stats/latency.h"

namespace etsn::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.meanNs, 0);
  EXPECT_EQ(s.minNs, 0);
  EXPECT_EQ(s.maxNs, 0);
}

TEST(Summary, SingleSample) {
  const Summary s = summarize({microseconds(423)});
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.meanNs, 423000.0);
  EXPECT_EQ(s.minNs, microseconds(423));
  EXPECT_EQ(s.maxNs, microseconds(423));
  EXPECT_DOUBLE_EQ(s.stddevNs, 0.0);
}

TEST(Summary, KnownDistribution) {
  const Summary s = summarize({1000, 2000, 3000, 4000, 5000});
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.meanNs, 3000.0);
  EXPECT_EQ(s.minNs, 1000);
  EXPECT_EQ(s.maxNs, 5000);
  // Population stddev of {1..5}k = sqrt(2)k.
  EXPECT_NEAR(s.stddevNs, 1414.2, 0.1);
  EXPECT_DOUBLE_EQ(s.meanUs(), 3.0);
  EXPECT_DOUBLE_EQ(s.maxUs(), 5.0);
}

TEST(Summary, UnorderedInput) {
  const Summary s = summarize({5000, 1000, 3000});
  EXPECT_EQ(s.minNs, 1000);
  EXPECT_EQ(s.maxNs, 5000);
}

void expectClose(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.minNs, b.minNs);
  EXPECT_EQ(a.maxNs, b.maxNs);
  EXPECT_NEAR(a.meanNs, b.meanNs, 1e-9 * (std::abs(b.meanNs) + 1));
  EXPECT_NEAR(a.stddevNs, b.stddevNs, 1e-6 * (b.stddevNs + 1));
}

TEST(Merge, EmptyIsIdentityBothWays) {
  const Summary s = summarize({1000, 2000, 5000});
  expectClose(merged(s, Summary{}), s);
  expectClose(merged(Summary{}, s), s);
  EXPECT_EQ(merged(Summary{}, Summary{}).count, 0);
}

TEST(Merge, TwoShardsMatchSinglePass) {
  const std::vector<TimeNs> a{1000, 2000, 3000};
  const std::vector<TimeNs> b{4000, 5000};
  std::vector<TimeNs> all = a;
  all.insert(all.end(), b.begin(), b.end());
  expectClose(merged(summarize(a), summarize(b)), summarize(all));
}

TEST(Merge, SingleSampleShards) {
  const Summary s =
      merged(merged(summarize({1000}), summarize({5000})), summarize({3000}));
  expectClose(s, summarize({1000, 5000, 3000}));
}

// Property check over randomized shards: any sharding, any association
// order and either operand order agree with one pass over the whole set.
TEST(Merge, RandomShardsAssociativeCommutativeVsBaseline) {
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const int numShards = static_cast<int>(rng.uniformInt(1, 6));
    std::vector<std::vector<TimeNs>> shards(
        static_cast<std::size_t>(numShards));
    std::vector<TimeNs> all;
    for (auto& shard : shards) {
      const int n = static_cast<int>(rng.uniformInt(0, 40));  // empties too
      for (int i = 0; i < n; ++i) {
        shard.push_back(rng.uniformInt(0, 2'000'000));
      }
      all.insert(all.end(), shard.begin(), shard.end());
    }
    const Summary baseline = summarize(all);

    Summary leftFold;  // ((s0 + s1) + s2) + ...
    for (const auto& shard : shards) leftFold.merge(summarize(shard));
    expectClose(leftFold, baseline);

    Summary rightFold;  // s0 + (s1 + (s2 + ...))
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
      rightFold = merged(summarize(*it), rightFold);
    }
    expectClose(rightFold, baseline);

    if (numShards >= 2) {  // commutativity on a random adjacent swap
      std::vector<std::vector<TimeNs>> swapped = shards;
      const auto i = static_cast<std::size_t>(
          rng.uniformInt(0, numShards - 2));
      std::swap(swapped[i], swapped[i + 1]);
      Summary swapFold;
      for (const auto& shard : swapped) swapFold.merge(summarize(shard));
      expectClose(swapFold, baseline);
    }
  }
}

TEST(Percentile, Endpoints) {
  std::vector<TimeNs> v{10, 20, 30, 40};
  EXPECT_EQ(percentile(v, 0), 10);
  EXPECT_EQ(percentile(v, 100), 40);
}

TEST(Percentile, Interpolates) {
  std::vector<TimeNs> v{0, 100};
  EXPECT_EQ(percentile(v, 50), 50);
  EXPECT_EQ(percentile(v, 25), 25);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile(std::vector<TimeNs>{}, 50), InvariantError);
}

TEST(Cdf, MonotoneAndComplete) {
  std::vector<TimeNs> v;
  for (int i = 100; i >= 1; --i) v.push_back(i * 10);
  const auto points = cdf(v, 20);
  ASSERT_EQ(points.size(), 20u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].value, points[i - 1].value);
    EXPECT_GT(points[i].fraction, points[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
  EXPECT_EQ(points.back().value, 1000);
}

TEST(Cdf, EmptyInput) { EXPECT_TRUE(cdf({}, 10).empty()); }

TEST(Cdf, FormatsRows) {
  const auto points = cdf({1000, 2000}, 2);
  const std::string out = formatCdf(points);
  EXPECT_NE(out.find("0.500"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace etsn::stats
