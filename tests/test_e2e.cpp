// End-to-end tests: schedule → GCL → simulate, comparing E-TSN against the
// PERIOD and AVB baselines on the paper's testbed topology (§VI-B).  These
// assert the paper's *qualitative* claims: E-TSN delivers much lower ECT
// latency and jitter, bounded worst case, and never breaks TCT deadlines.
#include <gtest/gtest.h>

#include "etsn/etsn.h"

namespace etsn {
namespace {

Experiment testbedExperiment(sched::Method method, double load,
                             std::uint64_t seed = 7) {
  Experiment ex;
  ex.topo = net::makeTestbedTopology();
  workload::TctWorkload w;
  w.numStreams = 10;
  w.networkLoad = load;
  w.seed = seed;
  ex.specs = workload::generateTct(ex.topo, w);
  // The §VI-B ECT stream: D2 -> D4, one MTU, min interevent 16 ms.
  ex.specs.push_back(
      workload::makeEct("ect", 1, 3, milliseconds(16), 1500));
  ex.options.method = method;
  ex.options.config.numProbabilistic = 8;
  ex.simConfig.duration = seconds(5);
  ex.simConfig.seed = seed;
  return ex;
}

TEST(EndToEnd, EtsnTestbedDeliversEverything) {
  const auto result = runExperiment(testbedExperiment(sched::Method::ETSN, 0.5));
  ASSERT_TRUE(result.feasible);
  for (const StreamResult& s : result.streams) {
    EXPECT_GT(s.delivered, 0) << s.name;
  }
  // ~5 s / ~24 ms mean interarrival ≈ 200 events.
  const StreamResult& ect = result.byName("ect");
  EXPECT_GT(ect.delivered, 150);
  EXPECT_GT(ect.latency.meanNs, 0);
}

TEST(EndToEnd, EtsnTctMeetsDeadlines) {
  const auto result = runExperiment(testbedExperiment(sched::Method::ETSN, 0.5));
  ASSERT_TRUE(result.feasible);
  for (const StreamResult& s : result.streams) {
    if (s.type != net::TrafficClass::TimeTriggered) continue;
    EXPECT_EQ(s.deadlineMisses, 0) << s.name << " missed deadlines";
  }
}

TEST(EndToEnd, EtsnBeatsBaselinesOnEctLatency) {
  const auto etsn = runExperiment(testbedExperiment(sched::Method::ETSN, 0.5));
  const auto period =
      runExperiment(testbedExperiment(sched::Method::PERIOD, 0.5));
  const auto avb = runExperiment(testbedExperiment(sched::Method::AVB, 0.5));
  ASSERT_TRUE(etsn.feasible);
  ASSERT_TRUE(period.feasible);
  ASSERT_TRUE(avb.feasible);
  const auto& e = etsn.byName("ect").latency;
  const auto& p = period.byName("ect").latency;
  const auto& a = avb.byName("ect").latency;
  // The paper reports ~an order of magnitude at 75% load; at this 50%
  // setting require a conservative 2.5x on average latency (measured
  // ~3x vs PERIOD, ~4x vs AVB) and larger factors on jitter.
  EXPECT_LT(e.meanNs * 2.5, p.meanNs)
      << "E-TSN " << e.meanUs() << "us vs PERIOD " << p.meanUs() << "us";
  EXPECT_LT(e.meanNs * 2.5, a.meanNs)
      << "E-TSN " << e.meanUs() << "us vs AVB " << a.meanUs() << "us";
  EXPECT_LT(e.stddevNs * 3, p.stddevNs);
  EXPECT_LT(e.maxNs * 2, p.maxNs);
}

TEST(EndToEnd, EtsnStableAcrossLoads) {
  // §VI-B: E-TSN's ECT latency is essentially independent of network load.
  const auto lo = runExperiment(testbedExperiment(sched::Method::ETSN, 0.25));
  const auto hi = runExperiment(testbedExperiment(sched::Method::ETSN, 0.75));
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  const auto& l = lo.byName("ect").latency;
  const auto& h = hi.byName("ect").latency;
  EXPECT_LT(h.meanNs, l.meanNs * 3) << "E-TSN degraded with load";
}

TEST(EndToEnd, AvbDegradesWithLoad) {
  // §VI-B: AVB's ECT latency rises sharply as TCT load grows.
  const auto lo = runExperiment(testbedExperiment(sched::Method::AVB, 0.25));
  const auto hi = runExperiment(testbedExperiment(sched::Method::AVB, 0.75));
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  EXPECT_GT(hi.byName("ect").latency.meanNs,
            lo.byName("ect").latency.meanNs);
}

TEST(EndToEnd, EctWorstCaseBoundedByDeadline) {
  const auto result =
      runExperiment(testbedExperiment(sched::Method::ETSN, 0.75));
  ASSERT_TRUE(result.feasible);
  const StreamResult& ect = result.byName("ect");
  // The deadline is the min interevent time (16 ms); E-TSN should beat it
  // by a wide margin — the paper reports 515 us worst case over 3 hops.
  EXPECT_EQ(ect.deadlineMisses, 0);
  EXPECT_LT(ect.latency.maxNs, milliseconds(4));
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  const auto a = runExperiment(testbedExperiment(sched::Method::ETSN, 0.5));
  const auto b = runExperiment(testbedExperiment(sched::Method::ETSN, 0.5));
  ASSERT_TRUE(a.feasible && b.feasible);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].samples, b.streams[i].samples) << i;
  }
}

TEST(EndToEnd, HeuristicEngineRunsTheSamePipeline) {
  auto ex = testbedExperiment(sched::Method::ETSN, 0.5);
  ex.options.useHeuristic = true;
  const auto result = runExperiment(ex);
  ASSERT_TRUE(result.feasible);
  const StreamResult& ect = result.byName("ect");
  EXPECT_GT(ect.delivered, 150);
  EXPECT_EQ(ect.deadlineMisses, 0);
  for (const StreamResult& s : result.streams) {
    if (s.type == net::TrafficClass::TimeTriggered) {
      EXPECT_EQ(s.deadlineMisses, 0) << s.name;
    }
  }
}

TEST(EndToEnd, MultiMtuEctDelivered) {
  auto ex = testbedExperiment(sched::Method::ETSN, 0.5);
  ex.specs.back().payloadBytes = 3 * 1500;  // 3-MTU event message
  const auto result = runExperiment(ex);
  ASSERT_TRUE(result.feasible);
  const StreamResult& ect = result.byName("ect");
  EXPECT_GT(ect.delivered, 100);
  EXPECT_EQ(ect.deadlineMisses, 0);
}

}  // namespace
}  // namespace etsn
