// Fault-injection tests: plan semantics, injector determinism, loss
// accounting invariants, outage pause/resume with CNC notifications,
// babbling sources, sync outages, and campaign-level byte-determinism of
// faulty runs across thread counts.
#include <gtest/gtest.h>

#include "etsn/campaign.h"
#include "etsn/etsn.h"
#include "net/ethernet.h"
#include "sched/program.h"
#include "sim/faults.h"
#include "sim/network.h"

namespace etsn {
namespace {

Experiment pipelineExperiment() {
  Experiment ex;
  ex.topo = net::makeTestbedTopology();
  net::StreamSpec s;
  s.name = "s";
  s.src = 0;
  s.dst = 2;
  s.period = milliseconds(4);
  s.maxLatency = milliseconds(4);
  s.payloadBytes = 1500;
  ex.specs = {s};
  ex.simConfig.duration = seconds(1);
  return ex;
}

/// Message-level books must close for every stream.
void expectBooksClosed(const ExperimentResult& r) {
  for (const StreamResult& s : r.streams) {
    EXPECT_EQ(s.sent, s.delivered + s.lost + s.unterminated) << s.name;
  }
}

void expectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const StreamResult& x = a.streams[i];
    const StreamResult& y = b.streams[i];
    EXPECT_EQ(x.samples, y.samples) << x.name;
    EXPECT_EQ(x.sent, y.sent) << x.name;
    EXPECT_EQ(x.delivered, y.delivered) << x.name;
    EXPECT_EQ(x.lost, y.lost) << x.name;
    EXPECT_EQ(x.unterminated, y.unterminated) << x.name;
    EXPECT_EQ(x.framesDroppedLoss, y.framesDroppedLoss) << x.name;
    EXPECT_EQ(x.framesDroppedOutage, y.framesDroppedOutage) << x.name;
    EXPECT_EQ(x.deadlineMisses, y.deadlineMisses) << x.name;
  }
}

TEST(FaultPlan, EmptySemantics) {
  sim::FaultPlan p;
  EXPECT_TRUE(p.empty());
  // All-zero components cannot fire: still empty.
  p.losses.push_back({});
  p.outages.push_back({});
  p.babblers.push_back({});
  p.syncOutages.push_back({});
  EXPECT_TRUE(p.empty());

  sim::FaultPlan loss;
  loss.losses.push_back({});
  loss.losses.back().dropProbability = 0.1;
  EXPECT_FALSE(loss.empty());

  sim::FaultPlan outage;
  outage.outages.push_back({});
  outage.outages.back().link = 0;  // down forever from t=0
  EXPECT_FALSE(outage.empty());
}

TEST(FaultPlan, ValidateRejectsMalformedComponents) {
  const net::Topology topo = net::makeTestbedTopology();
  const auto expectRejected = [&](const sim::FaultPlan& p) {
    EXPECT_THROW(p.validate(topo, 1), InvariantError);
  };

  sim::FaultPlan negLoss;
  negLoss.losses.push_back({});
  negLoss.losses.back().dropProbability = -0.1;
  expectRejected(negLoss);

  sim::FaultPlan badLossLink;
  badLossLink.losses.push_back({});
  badLossLink.losses.back().link = 99;
  expectRejected(badLossLink);

  sim::FaultPlan badOutage;
  badOutage.outages.push_back({});
  badOutage.outages.back().link = topo.numLinks();
  expectRejected(badOutage);

  sim::FaultPlan negOutage;
  negOutage.outages.push_back({});
  negOutage.outages.back().link = 0;
  negOutage.outages.back().downAt = -1;
  expectRejected(negOutage);

  sim::FaultPlan emptyBabble;  // a rate but an empty [start, stop) window
  emptyBabble.babblers.push_back({});
  emptyBabble.babblers.back().interval = milliseconds(1);
  expectRejected(emptyBabble);

  sim::FaultPlan badBabbleSource;
  badBabbleSource.babblers.push_back({});
  badBabbleSource.babblers.back().interval = milliseconds(1);
  badBabbleSource.babblers.back().stop = milliseconds(10);
  badBabbleSource.babblers.back().ectIndex = 1;  // only source 0 exists
  expectRejected(badBabbleSource);

  sim::FaultPlan badSyncNode;
  badSyncNode.syncOutages.push_back({});
  badSyncNode.syncOutages.back().node = topo.numNodes();
  expectRejected(badSyncNode);
}

TEST(FaultPlan, ValidateAcceptsDefaultsAndForeverOutages) {
  const net::Topology topo = net::makeTestbedTopology();
  sim::FaultPlan p;
  p.losses.push_back({});
  p.outages.push_back({});
  p.babblers.push_back({});
  p.syncOutages.push_back({});
  sim::LinkOutage forever;  // upAt <= downAt: the "down for good" idiom
  forever.link = 8;
  forever.downAt = milliseconds(100);
  forever.upAt = 0;
  p.outages.push_back(forever);
  EXPECT_NO_THROW(p.validate(topo, 0));
}

TEST(FaultPlan, ValidateRejectsOverlappingOutagesOnOneCable) {
  const net::Topology topo = net::makeTestbedTopology();

  // Plain overlap on the same directed link.
  sim::FaultPlan overlap;
  overlap.outages.push_back({8, milliseconds(10), milliseconds(30)});
  overlap.outages.push_back({8, milliseconds(20), milliseconds(40)});
  try {
    overlap.validate(topo, 0);
    FAIL() << "overlapping outages were accepted";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping outages on link"),
              std::string::npos)
        << e.what();
  }

  // The two directions of a cable are the same physical resource.
  const net::LinkId rev = topo.link(8).reverse;
  ASSERT_NE(rev, net::kNoLink);
  sim::FaultPlan bothDirections;
  bothDirections.outages.push_back({8, milliseconds(10), milliseconds(30)});
  bothDirections.outages.push_back({rev, milliseconds(20), milliseconds(40)});
  EXPECT_THROW(bothDirections.validate(topo, 0), InvariantError);

  // An open-ended outage overlaps everything after its start.
  sim::FaultPlan forever;
  forever.outages.push_back({8, milliseconds(10), 0});  // down for good
  forever.outages.push_back({8, milliseconds(50), milliseconds(60)});
  EXPECT_THROW(forever.validate(topo, 0), InvariantError);

  // Back-to-back episodes (shared endpoint) and distinct cables are fine.
  sim::FaultPlan ok;
  ok.outages.push_back({8, milliseconds(10), milliseconds(20)});
  ok.outages.push_back({8, milliseconds(20), milliseconds(30)});
  ok.outages.push_back({4, milliseconds(15), milliseconds(25)});
  EXPECT_NO_THROW(ok.validate(topo, 0));
}

TEST(FaultInjector, LinkSpecificModelOverridesGlobal) {
  const net::Topology topo = net::makeTestbedTopology();
  sim::FaultPlan plan;
  sim::LossModel global;
  global.dropProbability = 1.0;
  plan.losses.push_back(global);
  sim::LossModel quiet;
  quiet.link = 2;
  quiet.dropProbability = 0;
  plan.losses.push_back(quiet);

  sim::FaultInjector inj(topo, plan, 1);
  EXPECT_EQ(inj.lossAt(0, 0), sim::DropCause::RandomLoss);
  EXPECT_EQ(inj.lossAt(2, 0), std::nullopt);  // override wins
}

TEST(FaultInjector, OutageCoversBothDirectionsAndForever) {
  const net::Topology topo = net::makeTestbedTopology();
  sim::FaultPlan plan;
  sim::LinkOutage o;
  o.link = 8;  // SW1 -> SW2 (reverse is 9)
  o.downAt = 100;
  o.upAt = 200;
  plan.outages.push_back(o);
  sim::LinkOutage forever;
  forever.link = 0;
  forever.downAt = 50;
  forever.upAt = 0;  // upAt <= downAt: never comes back
  plan.outages.push_back(forever);

  const sim::FaultInjector inj(topo, plan, 1);
  EXPECT_FALSE(inj.linkDown(8, 99));
  EXPECT_TRUE(inj.linkDown(8, 100));
  EXPECT_TRUE(inj.linkDown(9, 150));  // the cable, not one direction
  EXPECT_FALSE(inj.linkDown(8, 200));
  EXPECT_TRUE(inj.linkDown(0, 50));
  EXPECT_TRUE(inj.linkDown(1, std::numeric_limits<TimeNs>::max() / 2));
  EXPECT_FALSE(inj.linkDown(0, 49));
}

TEST(FaultInjector, RejectsProbabilitiesOutsideUnitInterval) {
  const net::Topology topo = net::makeTestbedTopology();
  sim::FaultPlan plan;
  sim::LossModel m;
  m.dropProbability = 1.5;
  plan.losses.push_back(m);
  EXPECT_THROW(sim::FaultInjector(topo, plan, 1), InvariantError);
}

TEST(FaultInjector, SyncOutageTargetsNodeOrEveryone) {
  sim::SyncOutage all;
  all.start = 10;
  all.stop = 20;
  EXPECT_TRUE(all.covers(3, 15));
  EXPECT_FALSE(all.covers(3, 20));

  sim::SyncOutage one;
  one.node = 2;
  one.start = 10;
  one.stop = 20;
  EXPECT_TRUE(one.covers(2, 15));
  EXPECT_FALSE(one.covers(3, 15));

  // An explicit node set overrides the legacy single-node field.
  sim::SyncOutage set;
  set.node = 7;            // ignored once `nodes` is non-empty
  set.nodes = {1, 4};
  set.start = 10;
  set.stop = 20;
  EXPECT_TRUE(set.covers(1, 15));
  EXPECT_TRUE(set.covers(4, 15));
  EXPECT_FALSE(set.covers(7, 15));
  EXPECT_FALSE(set.covers(1, 20));
}

TEST(FaultPlan, ValidateRejectsBadSyncOutageNodeSets) {
  const net::Topology topo = net::makeTestbedTopology();

  // A node id outside the topology is a typo, not a no-op.
  sim::FaultPlan unknown;
  sim::SyncOutage so;
  so.nodes = {0, topo.numNodes()};
  so.start = 0;
  so.stop = milliseconds(10);
  unknown.syncOutages.push_back(so);
  EXPECT_THROW(unknown.validate(topo, 0), InvariantError);

  // Two episodes overlapping on the same node would silently union.
  sim::FaultPlan overlap;
  sim::SyncOutage a;
  a.nodes = {1, 2};
  a.start = milliseconds(10);
  a.stop = milliseconds(30);
  sim::SyncOutage b;
  b.nodes = {2, 3};
  b.start = milliseconds(20);
  b.stop = milliseconds(40);
  overlap.syncOutages = {a, b};
  try {
    overlap.validate(topo, 0);
    FAIL() << "overlapping per-node sync outages were accepted";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping sync outages"),
              std::string::npos)
        << e.what();
  }

  // A wildcard episode (all nodes) overlaps any per-node one.
  sim::FaultPlan wildcard;
  sim::SyncOutage all;
  all.start = milliseconds(10);
  all.stop = milliseconds(30);
  sim::SyncOutage one;
  one.nodes = {3};
  one.start = milliseconds(25);
  one.stop = milliseconds(35);
  wildcard.syncOutages = {all, one};
  EXPECT_THROW(wildcard.validate(topo, 0), InvariantError);

  // Disjoint node sets and back-to-back episodes are fine.
  sim::FaultPlan ok;
  sim::SyncOutage left = a;
  sim::SyncOutage right;
  right.nodes = {3, 4};
  right.start = milliseconds(20);
  right.stop = milliseconds(40);
  sim::SyncOutage later;
  later.nodes = {1};
  later.start = milliseconds(30);
  later.stop = milliseconds(50);
  ok.syncOutages = {left, right, later};
  EXPECT_NO_THROW(ok.validate(topo, 0));
}

TEST(FaultPlan, ValidateRejectsBadGptpKills) {
  const net::Topology topo = net::makeTestbedTopology();

  sim::FaultPlan unknown;
  sim::GptpKill k;
  k.node = topo.numNodes();
  unknown.gptpKills.push_back(k);
  EXPECT_THROW(unknown.validate(topo, 0), InvariantError);

  sim::FaultPlan negative;
  sim::GptpKill neg;
  neg.node = 0;
  neg.at = -1;
  negative.gptpKills.push_back(neg);
  EXPECT_THROW(negative.validate(topo, 0), InvariantError);

  sim::FaultPlan ok;
  sim::GptpKill fine;
  fine.node = 2;
  fine.at = milliseconds(50);
  ok.gptpKills.push_back(fine);
  ok.gptpKills.push_back({});  // inactive default is fine
  EXPECT_NO_THROW(ok.validate(topo, 0));
}

TEST(SimFaults, SyncOutageExplicitAllNodesMatchesLegacyWildcard) {
  Experiment legacy = pipelineExperiment();
  legacy.simConfig.clockDriftPpbMax = 10'000;
  legacy.simConfig.syncInterval = milliseconds(50);
  legacy.options.config.syncErrorMargin = microseconds(2);
  sim::SyncOutage so;  // node == kNoNode: everyone
  so.start = milliseconds(200);
  so.stop = milliseconds(800);
  legacy.simConfig.faults.syncOutages.push_back(so);

  Experiment explicitSet = legacy;
  auto& es = explicitSet.simConfig.faults.syncOutages.back();
  for (net::NodeId n = 0; n < explicitSet.topo.numNodes(); ++n) {
    es.nodes.push_back(n);
  }

  expectIdentical(runExperiment(legacy), runExperiment(explicitSet));
}

TEST(SimFaults, ZeroPlanByteIdenticalToFaultFree) {
  Experiment clean = pipelineExperiment();
  clean.specs.push_back(workload::makeEct("e", 1, 3, milliseconds(16), 1500));

  Experiment zero = clean;
  zero.simConfig.faults.losses.push_back({});   // all probabilities zero
  zero.simConfig.faults.outages.push_back({});  // no link
  ASSERT_TRUE(zero.simConfig.faults.empty());

  expectIdentical(runExperiment(clean), runExperiment(zero));
}

TEST(SimFaults, RandomLossClosesTheBooks) {
  Experiment ex = pipelineExperiment();
  ex.specs.push_back(workload::makeEct("e", 1, 3, milliseconds(16), 1500));
  sim::LossModel loss;
  loss.dropProbability = 0.05;
  ex.simConfig.faults.losses.push_back(loss);

  const auto r = runExperiment(ex);
  ASSERT_TRUE(r.feasible);
  expectBooksClosed(r);
  std::int64_t droppedLoss = 0, droppedOutage = 0, lost = 0;
  for (const StreamResult& s : r.streams) {
    droppedLoss += s.framesDroppedLoss;
    droppedOutage += s.framesDroppedOutage;
    lost += s.lost;
  }
  EXPECT_GT(droppedLoss, 0);
  EXPECT_EQ(droppedOutage, 0);
  EXPECT_GT(lost, 0);
  EXPECT_LT(r.byName("s").deliveryRatio, 1.0);
  EXPECT_GT(r.byName("s").deliveryRatio, 0.5);
}

TEST(SimFaults, BurstLossDropsWithoutIidModel) {
  Experiment ex = pipelineExperiment();
  sim::LossModel burst;
  burst.pGoodToBad = 0.01;
  burst.pBadToGood = 0.2;
  burst.lossBad = 1.0;
  ex.simConfig.faults.losses.push_back(burst);

  const auto r = runExperiment(ex);
  ASSERT_TRUE(r.feasible);
  expectBooksClosed(r);
  EXPECT_GT(r.streams[0].framesDroppedLoss, 0);
  EXPECT_LT(r.streams[0].deliveryRatio, 1.0);
}

TEST(SimFaults, SameSeedSamePlanReproducesExactly) {
  Experiment ex = pipelineExperiment();
  ex.specs.push_back(workload::makeEct("e", 1, 3, milliseconds(16), 1500));
  sim::LossModel loss;
  loss.dropProbability = 0.02;
  loss.pGoodToBad = 0.005;
  loss.pBadToGood = 0.3;
  loss.lossBad = 0.9;
  ex.simConfig.faults.losses.push_back(loss);
  expectIdentical(runExperiment(ex), runExperiment(ex));
}

TEST(SimFaults, OutagePausesPortsAndNotifiesCnc) {
  Experiment ex = pipelineExperiment();
  const sched::MethodSchedule ms =
      sched::buildSchedule(ex.topo, ex.specs, ex.options);
  ASSERT_TRUE(ms.schedule.info.feasible);
  const sched::NetworkProgram program = sched::compileProgram(ex.topo, ms);

  sim::SimConfig cfg = ex.simConfig;
  sim::LinkOutage o;
  o.link = 0;  // the talker's first link, D1 -> SW1
  o.downAt = milliseconds(300);
  o.upAt = milliseconds(400);
  cfg.faults.outages.push_back(o);
  std::vector<TimeNs> downs, ups;
  cfg.onLinkDown = [&](net::LinkId l, TimeNs t) {
    EXPECT_EQ(l, 0);
    downs.push_back(t);
  };
  cfg.onLinkUp = [&](net::LinkId l, TimeNs t) {
    EXPECT_EQ(l, 0);
    ups.push_back(t);
  };

  sim::Network network(ex.topo, program, cfg);
  network.run();
  EXPECT_EQ(downs, std::vector<TimeNs>{milliseconds(300)});
  EXPECT_EQ(ups, std::vector<TimeNs>{milliseconds(400)});

  const sim::StreamRecord& r = network.recorder().record(0);
  // Frames emitted during the outage wait in their queues (nothing is
  // dropped there), but the gate drains one frame per period, so the
  // backlog persists to the end of the run as in-flight messages.
  EXPECT_EQ(r.messagesSent,
            r.messagesDelivered + r.messagesLost + r.messagesUnterminated);
  EXPECT_EQ(r.framesEmitted, r.framesDelivered + r.framesDroppedLoss +
                                 r.framesDroppedOutage + r.framesInFlight);
  EXPECT_GT(r.messagesUnterminated, 0);
  EXPECT_GT(r.deadlineMisses, 0);       // the backlog arrives late
  EXPECT_GE(r.messagesDelivered, 200);  // ~250 sent, ~25 stuck in backlog
  EXPECT_LE(r.messagesLost, 1);         // at most the frame cut mid-flight
}

TEST(SimFaults, OutageCutsMidFlightFrame) {
  Experiment ex = pipelineExperiment();
  const sched::MethodSchedule ms =
      sched::buildSchedule(ex.topo, ex.specs, ex.options);
  ASSERT_TRUE(ms.schedule.info.feasible);
  const sched::NetworkProgram program = sched::compileProgram(ex.topo, ms);

  // Calibrate: trace one clean run to find a transmission-end time on the
  // first link, then start the outage 1 us before it — the frame is on
  // the wire when the link dies, so it must be cut.
  TimeNs txEnd = 0;
  {
    sim::SimConfig cfg = ex.simConfig;
    cfg.trace = [&](const sim::TraceEvent& e) {
      if (e.link == 0 && e.txEnd > milliseconds(500) && txEnd == 0) {
        txEnd = e.txEnd;
      }
    };
    sim::Network network(ex.topo, program, cfg);
    network.run();
  }
  ASSERT_GT(txEnd, 0);

  sim::SimConfig cfg = ex.simConfig;
  sim::LinkOutage o;
  o.link = 0;
  o.downAt = txEnd - microseconds(1);
  o.upAt = txEnd + milliseconds(1);
  cfg.faults.outages.push_back(o);
  sim::Network network(ex.topo, program, cfg);
  network.run();

  const sim::StreamRecord& r = network.recorder().record(0);
  EXPECT_GE(r.framesDroppedOutage, 1);
  EXPECT_GE(r.messagesLost, 1);
  EXPECT_EQ(r.framesEmitted, r.framesDelivered + r.framesDroppedLoss +
                                 r.framesDroppedOutage + r.framesInFlight);
}

TEST(SimFaults, BabblingSourceViolatesMinInterevent) {
  Experiment ex = pipelineExperiment();
  ex.specs.push_back(workload::makeEct("e", 1, 3, milliseconds(16), 500));
  const auto clean = runExperiment(ex);
  ASSERT_TRUE(clean.feasible);

  sim::BabblingSource b;
  b.ectIndex = 0;
  b.start = milliseconds(100);
  b.stop = milliseconds(600);
  b.interval = milliseconds(1);
  ex.simConfig.faults.babblers.push_back(b);
  const auto babbling = runExperiment(ex);
  ASSERT_TRUE(babbling.feasible);

  // ~500 extra events on top of the declared-rate baseline.
  EXPECT_GE(babbling.byName("e").sent, clean.byName("e").sent + 400);
  expectBooksClosed(babbling);
}

TEST(SimFaults, BabblerWithUnknownSourceIsRejected) {
  Experiment ex = pipelineExperiment();  // no ECT sources at all
  sim::BabblingSource b;
  b.ectIndex = 0;
  b.start = 0;
  b.stop = milliseconds(10);
  b.interval = milliseconds(1);
  ex.simConfig.faults.babblers.push_back(b);
  EXPECT_THROW(runExperiment(ex), InvariantError);
}

TEST(SimFaults, SyncOutageLetsDriftAccumulate) {
  Experiment ex = pipelineExperiment();
  ex.simConfig.duration = seconds(2);
  // With sync every 50 ms a 10 ppm clock slides at most 0.5 us between
  // corrections — well inside the 2 us schedule margin, so the synced run
  // shows only residual-error jitter.
  ex.simConfig.clockDriftPpbMax = 10'000;  // 10 ppm
  ex.simConfig.syncInterval = milliseconds(50);
  ex.simConfig.syncResidualMax = nanoseconds(100);
  ex.options.config.syncErrorMargin = microseconds(2);
  const auto synced = runExperiment(ex);

  sim::SyncOutage so;  // all nodes lose sync for the middle second
  so.start = milliseconds(500);
  so.stop = milliseconds(1500);
  ex.simConfig.faults.syncOutages.push_back(so);
  const auto outage = runExperiment(ex);

  ASSERT_TRUE(synced.feasible && outage.feasible);
  // Uncorrected drift over a second slides the gates by up to ~20 us
  // relative between nodes — frames start missing windows and wait out
  // whole cycles, dwarfing the synced run's jitter.
  EXPECT_GT(outage.streams[0].latency.stddevNs,
            10 * synced.streams[0].latency.stddevNs);
}

TEST(SimFaults, FaultCampaignIsByteIdenticalAcrossThreadCounts) {
  auto makeCampaign = [](int threads) {
    Campaign c;
    c.name = "faulty";
    c.seed = 11;
    c.threads = threads;
    for (int cell = 0; cell < 6; ++cell) {
      c.add("cell" + std::to_string(cell), [cell](std::uint64_t taskSeed) {
        Experiment ex;
        ex.topo = net::makeTestbedTopology();
        net::StreamSpec s;
        s.name = "s";
        s.src = 0;
        s.dst = 2;
        s.period = milliseconds(4);
        s.maxLatency = milliseconds(4);
        s.payloadBytes = 1500;
        ex.specs = {s};
        ex.specs.push_back(
            workload::makeEct("e", 1, 3, milliseconds(16), 1000));
        ex.simConfig.duration = milliseconds(200);
        ex.simConfig.seed = taskSeed;
        if (cell % 2 == 0) {
          sim::LossModel loss;
          loss.dropProbability = 0.02;
          ex.simConfig.faults.losses.push_back(loss);
        } else {
          sim::LinkOutage o;
          o.link = 8;
          o.downAt = milliseconds(50);
          o.upAt = milliseconds(50 + 10 * cell);
          ex.simConfig.faults.outages.push_back(o);
        }
        return ex;
      });
    }
    return c;
  };

  const std::string j1 = toJson(runCampaign(makeCampaign(1)));
  const std::string j2 = toJson(runCampaign(makeCampaign(2)));
  const std::string j8 = toJson(runCampaign(makeCampaign(8)));
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
}

}  // namespace
}  // namespace etsn
